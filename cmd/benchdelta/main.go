// Command benchdelta compares two bench reports produced by
// `chansim -bench` (see DESIGN.md §9) and exits non-zero on
// regressions.
//
// Kernel allocation counts are deterministic, so allocs/event
// regressions beyond the threshold always fail. Timing (ns/event,
// events/sec) and every network metric are noisy on shared CI
// runners, so those regressions only warn unless -strict is set.
//
// The "parallel" section carries hard correctness gates independent of
// -strict: every run's trajectory hash must match its grid's (worker
// count must not change the simulation), the hash must not drift from
// the baseline when workloads are comparable, and speedup at the widest
// worker count must stay >= 1.0 on multi-core hosts. The gates cover
// every grid in the report, including the mobile 50x50 workload whose
// hash pins the sharded handoff path (per-shard tallies and cross-shard
// relays included in the digest).
//
//	benchdelta -baseline BENCH_baseline.json -current BENCH_ci.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "checked-in baseline report")
		currentPath  = flag.String("current", "BENCH_ci.json", "freshly measured report")
		threshold    = flag.Float64("threshold", 0.20, "relative regression tolerated (0.20 = 20%)")
		strict       = flag.Bool("strict", false, "fail on timing regressions too, not just allocations")
		only         = flag.String("only", "", "check only these comma-separated sections ("+strings.Join(experiments.BenchSections, ",")+")")
	)
	flag.Parse()
	want, err := experiments.ParseSections(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	base := load(*baselinePath)
	cur := load(*currentPath)

	failed := false
	check := func(name string, baseVal, curVal float64, hard bool) {
		if baseVal <= 0 {
			fmt.Printf("  %-22s baseline %.4g — skipped (no baseline)\n", name, baseVal)
			return
		}
		delta := curVal/baseVal - 1
		status := "ok"
		if delta > *threshold {
			if hard || *strict {
				status = "FAIL"
				failed = true
			} else {
				status = "warn"
			}
		}
		fmt.Printf("  %-22s %10.4g -> %10.4g  (%+.1f%%)  %s\n", name, baseVal, curVal, 100*delta, status)
	}

	fmt.Printf("benchdelta: %s vs %s (threshold %.0f%%)\n", *baselinePath, *currentPath, 100**threshold)
	if want["kernel"] {
		check("ns/event", base.Kernel.NsPerEvent, cur.Kernel.NsPerEvent, false)
		check("allocs/event", base.Kernel.AllocsPerEvent, cur.Kernel.AllocsPerEvent, true)
		check("bytes/event", base.Kernel.BytesPerEvent, cur.Kernel.BytesPerEvent, true)
	}
	if want["sweep"] {
		check("sweep seq seconds", base.Sweep.SeqSeconds, cur.Sweep.SeqSeconds, false)
	}
	// Network metrics are soft even for allocations: the live runtime's
	// per-message counts depend on goroutine scheduling (batch sizes,
	// retransmit timers), so they are not reproducible the way the
	// single-threaded DES kernel's are.
	if want["network"] {
		check("net ns/message", base.Network.NsPerMessage, cur.Network.NsPerMessage, false)
		check("net allocs/message", base.Network.AllocsPerMessage, cur.Network.AllocsPerMessage, false)
		check("net ns/borrow-round", base.Network.NsPerBorrowRound, cur.Network.NsPerBorrowRound, false)
	}
	if want["parallel"] && !checkParallel(base, cur) {
		failed = true
	}
	if want["policies"] && !checkPolicies(base, cur) {
		failed = true
	}
	if want["scale"] && !checkScale(base, cur, *threshold, *strict) {
		failed = true
	}
	if failed {
		fmt.Println("benchdelta: REGRESSION detected")
		os.Exit(1)
	}
	fmt.Println("benchdelta: within tolerance")
}

// checkParallel validates the sharded-kernel section and reports
// whether it passed. Unlike the timing checks these are correctness
// gates, not thresholds:
//
//   - every run's trajectory hash must equal its grid's hash — the
//     determinism contract (worker count must not change the
//     simulation), re-verified from the artifact itself;
//   - when the baseline has the same grid at the same workload length
//     (Quick flags match), the hash must be unchanged — the parallel
//     kernel's trajectory is pinned across commits the same way the
//     serial kernel's allocation counts are;
//   - the speedup at the widest worker count must not drop below 1.0 —
//     hard only when the report was taken on ≥2 cores, since on a
//     single core "speedup" is pure scheduler noise.
func checkParallel(base, cur experiments.BenchReport) bool {
	ok := true
	fail := func(format string, args ...any) {
		fmt.Printf("  parallel: FAIL "+format+"\n", args...)
		ok = false
	}
	baseGrids := make(map[string]experiments.ParallelGridBench)
	for _, g := range base.Parallel.Grids {
		baseGrids[g.Grid] = g
	}
	for _, g := range cur.Parallel.Grids {
		for _, r := range g.Runs {
			if r.Hash != g.Hash {
				fail("%s workers=%d trajectory hash %.12s != grid hash %.12s (determinism broken)",
					g.Grid, r.Workers, r.Hash, g.Hash)
			}
		}
		if bg, found := baseGrids[g.Grid]; found && base.Quick == cur.Quick {
			if bg.Hash != g.Hash {
				fail("%s trajectory hash drifted %.12s -> %.12s (simulation outcome changed)",
					g.Grid, bg.Hash, g.Hash)
			}
		}
		if n := len(g.Runs); n > 0 {
			last := g.Runs[n-1]
			status := "ok"
			if last.Speedup < 1.0 && last.Workers > 1 {
				if cur.GOMAXPROCS >= 2 {
					status = "FAIL"
					ok = false
				} else {
					status = "warn (1 core)"
				}
			}
			fmt.Printf("  %-22s %10.4g -> %10.4g  (speedup %.2fx @ %d workers)  %s\n",
				"par "+g.Grid+" ev/s", g.Runs[0].EventsPerSec, last.EventsPerSec, last.Speedup, last.Workers, status)
		}
	}
	if len(cur.Parallel.Grids) == 0 && len(base.Parallel.Grids) > 0 {
		fail("section missing from current report but present in baseline")
	}
	return ok
}

// checkPolicies validates the pluggable-policy section. The default
// (linear, best) pair is the paper's hard-coded check_mode/Best()
// behavior re-expressed through the policy seam, so its trajectory hash
// drifting from the baseline is a hard correctness failure — it means
// the seam no longer reproduces the reproduction. Non-default pairs are
// new surface, so their drift only warns (their hashes legitimately
// change when a policy's math is tuned). Skipped when the baseline
// predates the section; hashes compare only when Quick flags match
// (workload lengths differ otherwise).
func checkPolicies(base, cur experiments.BenchReport) bool {
	if len(base.Policies.Runs) == 0 {
		return true
	}
	if len(cur.Policies.Runs) == 0 {
		fmt.Println("  policies: FAIL section missing from current report but present in baseline")
		return false
	}
	ok := true
	if cd := cur.Policies.DefaultPolicyRun(); cd == nil {
		fmt.Println("  policies: FAIL default (linear, best) pair missing from current report")
		ok = false
	} else if bd := base.Policies.DefaultPolicyRun(); bd != nil && base.Quick == cur.Quick {
		if bd.Hash != cd.Hash {
			fmt.Printf("  policies: FAIL default linear/best trajectory hash drifted %.12s -> %.12s (default policies no longer bit-identical)\n",
				bd.Hash, cd.Hash)
			ok = false
		} else {
			fmt.Printf("  %-22s %12.12s ok (default pair pinned, %d pairs measured)\n",
				"policy linear/best", cd.Hash, len(cur.Policies.Runs))
		}
	}
	if base.Quick == cur.Quick {
		baseRuns := make(map[string]string, len(base.Policies.Runs))
		for _, r := range base.Policies.Runs {
			baseRuns[r.Predictor+"/"+r.Lender] = r.Hash
		}
		for _, r := range cur.Policies.Runs {
			if r.Predictor == "linear" && r.Lender == "best" {
				continue
			}
			if h, found := baseRuns[r.Predictor+"/"+r.Lender]; found && h != r.Hash {
				fmt.Printf("  policies: warn %s/%s trajectory hash drifted %.12s -> %.12s\n",
					r.Predictor, r.Lender, h, r.Hash)
			}
		}
	}
	return ok
}

// maxRoutesPerShard bounds the cross-shard routes any shard may
// materialise at the report's highest shard count: row-band tiles on a
// wrapped lattice touch a handful of adjacent bands, never O(shards).
const maxRoutesPerShard = 10

// checkScale validates the giant-grid section. Its gates mirror
// checkParallel's and are hard regardless of -strict:
//
//   - every (shards, workers) run's trajectory hash must equal its
//     grid's — partitioning and worker count must not change the
//     simulation;
//   - when the baseline has the same grid at the same workload length
//     (Quick flags match), the hash must be unchanged;
//   - the per-shard cross-shard route count must stay below a small
//     constant — the sparse-routing guarantee read off the artifact;
//   - bytes-per-cell regressions beyond the threshold fail hard:
//     construction footprint is GC-settled heap, deterministic the way
//     the serial kernel's allocation counts are.
//
// Events/sec is timing, so it only warns unless -strict.
// steadyOccupancyFloor is the borrow-heavy floor the steady section
// must reach: below it the warm-started grid is not actually under
// pressure and the "under load" numbers would silently measure idle
// machinery.
const steadyOccupancyFloor = 0.8

func checkScale(base, cur experiments.BenchReport, threshold float64, strict bool) bool {
	ok := checkScaleGrids("scale", base.Scale.Grids, cur.Scale.Grids,
		base.Quick == cur.Quick, threshold, strict, false)
	if !checkScaleGrids("steady", base.Scale.Steady, cur.Scale.Steady,
		base.Quick == cur.Quick, threshold, strict, true) {
		ok = false
	}
	return ok
}

// checkScaleGrids gates one grid list of the scale section. The steady
// list adds the load gates: measured occupancy at or above the
// borrow-heavy floor and a nonzero borrow-attempt count, both hard —
// a steady bench that is not borrowing is a broken bench, whatever its
// events/sec says.
//
// Trajectory hashes (and events/sec) compare against the baseline only
// when the grid's drain_mode matches: a truncated drain cancels the
// deferred requests a full drain resolves, so the two trajectories
// legitimately differ after the arrival window and must never be
// silently compared. What IS pinned across modes — hard — is the
// measurement window itself: the mean occupancy and, when both reports
// record one, the measured_hash, neither of which drain behavior can
// touch.
func checkScaleGrids(label string, baseList, curList []experiments.ScaleGridBench, quickMatch bool, threshold float64, strict, steady bool) bool {
	ok := true
	fail := func(format string, args ...any) {
		fmt.Printf("  %s: FAIL "+format+"\n", append([]any{label}, args...)...)
		ok = false
	}
	baseGrids := make(map[string]experiments.ScaleGridBench)
	for _, g := range baseList {
		baseGrids[g.Grid] = g
	}
	for _, g := range curList {
		shardCounts := make(map[int]bool)
		workerCounts := make(map[int]bool)
		for _, r := range g.Runs {
			shardCounts[r.Shards] = true
			workerCounts[r.Workers] = true
			if r.Hash != g.Hash {
				fail("%s shards=%d workers=%d trajectory hash %.12s != grid hash %.12s (determinism broken)",
					g.Grid, r.Shards, r.Workers, r.Hash, g.Hash)
			}
		}
		if len(shardCounts) < 2 || len(workerCounts) < 2 {
			fail("%s covers %d shard counts and %d worker counts; need >= 2 of each to pin determinism",
				g.Grid, len(shardCounts), len(workerCounts))
		}
		if g.MaxRoutesPerShard > maxRoutesPerShard {
			fail("%s max routes per shard %d > %d (cross-shard routing no longer sparse)",
				g.Grid, g.MaxRoutesPerShard, maxRoutesPerShard)
		}
		if steady {
			if g.MeanOccupancy < steadyOccupancyFloor {
				fail("%s mean occupancy %.3f below the borrow-heavy floor %.2f (bench is idling, not under pressure)",
					g.Grid, g.MeanOccupancy, steadyOccupancyFloor)
			}
			if g.BorrowAttempts == 0 {
				fail("%s recorded zero borrow attempts — the steady workload never exercised the borrow path",
					g.Grid)
			}
		}
		bg, found := baseGrids[g.Grid]
		sameMode := quickMatch && bg.DrainMode == g.DrainMode
		if found && sameMode && bg.Hash != g.Hash {
			fail("%s trajectory hash drifted %.12s -> %.12s (simulation outcome changed)",
				g.Grid, bg.Hash, g.Hash)
		}
		if found && quickMatch && !sameMode {
			fmt.Printf("  %s: %s drain_mode %q -> %q — trajectory hash not comparable, gating on measured-window stats\n",
				label, g.Grid, bg.DrainMode, g.DrainMode)
		}
		if found && quickMatch {
			if bg.MeasuredHash != "" && g.MeasuredHash != "" && bg.MeasuredHash != g.MeasuredHash {
				fail("%s measured-window hash drifted %.12s -> %.12s (offered load or occupancy changed — drain mode cannot explain this)",
					g.Grid, bg.MeasuredHash, g.MeasuredHash)
			}
			if steady && bg.MeanOccupancy > 0 && bg.MeanOccupancy != g.MeanOccupancy {
				fail("%s measured occupancy drifted %v -> %v (barrier samples lie inside the arrival window; drain mode cannot affect them)",
					g.Grid, bg.MeanOccupancy, g.MeanOccupancy)
			}
		}
		if found && bg.BytesPerCell > 0 {
			delta := g.BytesPerCell/bg.BytesPerCell - 1
			status := "ok"
			if delta > threshold {
				status = "FAIL"
				ok = false
			}
			fmt.Printf("  %-22s %10.4g -> %10.4g  (%+.1f%%)  %s\n",
				label+" "+g.Grid+" B/cell", bg.BytesPerCell, g.BytesPerCell, 100*delta, status)
		}
		if n := len(g.Runs); n > 0 {
			first := g.Runs[0]
			status := "ok"
			if found && sameMode {
				for _, br := range bg.Runs {
					if br.Shards != first.Shards || br.Workers != first.Workers || br.EventsPerSec <= 0 {
						continue
					}
					if delta := first.EventsPerSec/br.EventsPerSec - 1; delta < -threshold {
						if strict {
							status = "FAIL"
							ok = false
						} else {
							status = "warn"
						}
					}
				}
			}
			fmt.Printf("  %-22s %10.4g ev/s, %d runs, peak RSS %.1f GiB  %s\n",
				label+" "+g.Grid, first.EventsPerSec, n, float64(g.PeakRSSBytes)/(1<<30), status)
			if steady {
				// Min setup across runs: the first combo's figure folds in
				// one-time page faults and lazy allocations as the process
				// RSS climbs, which is not the cost of seeding itself.
				setup := first.SetupSeconds
				for _, r := range g.Runs {
					if r.SetupSeconds > 0 && r.SetupSeconds < setup {
						setup = r.SetupSeconds
					}
				}
				// RampEstSeconds is the measured cost of ONE simulated
				// mean-hold; reaching stationarity by simulation takes
				// several, so the printed ramp figure is a floor.
				fmt.Printf("  %-22s occupancy %.3f, %.4g borrow/s, warm-start %.2fs vs ≥%.1fs simulated ramp (3+ mean-holds)\n",
					label+" "+g.Grid+" load", g.MeanOccupancy, g.BorrowAttemptsPerSec,
					setup, 3*g.RampEstSeconds)
				// Per-phase wall clock (run vs drain split), additive:
				// older baselines predate the fields and print only the
				// current report's split.
				if first.RunSeconds > 0 || first.DrainSeconds > 0 {
					var br *experiments.ScaleRun
					if found {
						for i := range bg.Runs {
							if bg.Runs[i].Shards == first.Shards && bg.Runs[i].Workers == first.Workers {
								br = &bg.Runs[i]
								break
							}
						}
					}
					if br != nil && (br.RunSeconds > 0 || br.DrainSeconds > 0) {
						fmt.Printf("  %-22s run %.2fs -> %.2fs, drain %.2fs -> %.2fs (wall %.2fs -> %.2fs)\n",
							label+" "+g.Grid+" phases", br.RunSeconds, first.RunSeconds,
							br.DrainSeconds, first.DrainSeconds, br.WallSeconds, first.WallSeconds)
					} else {
						fmt.Printf("  %-22s run %.2fs + drain %.2fs = wall %.2fs (%s drain)\n",
							label+" "+g.Grid+" phases", first.RunSeconds, first.DrainSeconds,
							first.WallSeconds, drainModeName(g.DrainMode))
					}
				}
			}
		}
	}
	if len(curList) == 0 && len(baseList) > 0 {
		fail("section missing from current report but present in baseline")
	}
	return ok
}

// drainModeName renders ScaleGridBench.DrainMode for display: the
// empty string is the legacy full drain.
func drainModeName(mode string) string {
	if mode == "" {
		return "full"
	}
	return mode
}

func load(path string) experiments.BenchReport {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var r experiments.BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		os.Exit(2)
	}
	return r
}
