// Command changrid is a live demo of the "one goroutine per base
// station" runtime: it drives a moving hot spot of calls over the
// concurrent network and animates per-cell channel usage and mode as an
// ASCII grid.
//
//	changrid -scheme adaptive -seconds 5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/chanset"
	"repro/internal/hexgrid"
	"repro/internal/livenet"
	"repro/internal/registry"
)

func main() {
	var (
		scheme  = flag.String("scheme", "adaptive", "allocation scheme: "+strings.Join(registry.Names(), ", "))
		width   = flag.Int("width", 7, "grid width")
		chans   = flag.Int("channels", 35, "spectrum size")
		seconds = flag.Int("seconds", 5, "demo duration")
		fps     = flag.Int("fps", 4, "frames per second")
		seed    = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	grid, err := hexgrid.New(hexgrid.Config{
		Shape: hexgrid.Rect, Width: *width, Height: *width, ReuseDistance: 2, Wrap: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	assign, err := chanset.Assign(grid, *chans)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	factory, err := registry.Build(*scheme, grid, assign, registry.Config{Latency: 10})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	net := livenet.New(grid, assign, factory, livenet.Options{
		Delay: 100 * time.Microsecond, LatencyTicks: 10, Seed: uint64(*seed),
	})
	defer net.Stop()

	// Shared view of committed holdings, maintained from callbacks.
	var mu sync.Mutex
	held := make([]int, grid.NumCells())

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Traffic: a hot spot that drifts across the grid, background churn
	// everywhere.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(*seed))
		hot := grid.InteriorCell()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		step := 0
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			step++
			if step%200 == 0 { // drift the hotspot
				adj := grid.Adjacent(hot)
				hot = adj[rng.Intn(len(adj))]
			}
			cell := hexgrid.CellID(rng.Intn(grid.NumCells()))
			if rng.Float64() < 0.7 {
				cell = hot
			}
			holdFor := time.Duration(20+rng.Intn(400)) * time.Millisecond
			net.Request(cell, func(r livenet.Result) {
				if !r.Granted {
					return
				}
				mu.Lock()
				held[r.Cell]++
				mu.Unlock()
				time.AfterFunc(holdFor, func() {
					net.Release(r.Cell, r.Ch)
					mu.Lock()
					held[r.Cell]--
					mu.Unlock()
				})
			})
		}
	}()

	frames := *seconds * *fps
	for f := 0; f < frames; f++ {
		time.Sleep(time.Second / time.Duration(*fps))
		mu.Lock()
		frame := render(grid, held, *width)
		mu.Unlock()
		fmt.Printf("\033[H\033[2J%s", frame)
		fmt.Printf("scheme=%s grants=%d denies=%d msgs=%d\n",
			*scheme, net.Grants(), net.Denies(), net.Messages().Total)
		if err := net.Violation(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	close(stop)
	wg.Wait()
	// Let every held call's release timer fire before tearing the
	// network down (max hold is ~420ms).
	time.Sleep(600 * time.Millisecond)
	net.WaitSettled(5 * time.Second)
	fmt.Println("done: no co-channel interference observed")
}

// render draws per-cell active call counts as a staggered hex-ish grid.
func render(g *hexgrid.Grid, held []int, width int) string {
	var b strings.Builder
	b.WriteString("active calls per cell (moving hotspot):\n")
	for r := 0; r < width; r++ {
		if r%2 == 1 {
			b.WriteString("  ")
		}
		for q := 0; q < width; q++ {
			id, ok := g.At(hexgrid.Axial{Q: q, R: r})
			if !ok {
				continue
			}
			n := held[id]
			switch {
			case n == 0:
				b.WriteString(" ·  ")
			case n < 10:
				fmt.Fprintf(&b, " %d  ", n)
			default:
				fmt.Fprintf(&b, "%2d  ", n)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
