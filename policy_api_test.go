package adca_test

import (
	"strings"
	"testing"

	"repro"
)

// The facade's policy surface: option composition, name validation, and
// the deprecated-wrapper equivalence.

func TestPolicyOptionCompose(t *testing.T) {
	sc := adca.Scenario{Wrap: true, Seed: 3}
	net, err := adca.New(sc,
		adca.WithPredictor("ewma", map[string]float64{"alpha": 0.2}),
		adca.WithLender("interference-aware", nil),
		adca.WithObs(adca.ObsConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	ws, err := net.RunWorkload(adca.Workload{ErlangPerCell: 6, DurationTicks: 15_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ws.Offered == 0 {
		t.Fatal("no traffic offered")
	}
	if net.Metrics() == nil {
		t.Fatal("WithObs did not enable metrics")
	}
}

func TestPolicyOptionsChangeTrajectory(t *testing.T) {
	run := func(opts ...adca.Option) adca.Stats {
		net, err := adca.New(adca.Scenario{Wrap: true, Seed: 3}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		// Heavy load so the borrow path (and with it the lender seam)
		// actually runs.
		if _, err := net.RunWorkload(adca.Workload{ErlangPerCell: 9, DurationTicks: 20_000, Seed: 3}); err != nil {
			t.Fatal(err)
		}
		return net.Stats()
	}
	def := run()
	same := run(adca.WithPredictor("linear", nil), adca.WithLender("best", nil))
	if def != same {
		t.Errorf("explicit default policies changed the trajectory:\n def  %+v\n same %+v", def, same)
	}
	other := run(adca.WithPredictor("last-value", nil), adca.WithLender("reused-frequency", nil))
	if def == other {
		t.Error("non-default policies produced the default trajectory (seam not plumbed?)")
	}
}

func TestUnknownPolicyNamesError(t *testing.T) {
	if _, err := adca.New(adca.Scenario{}, adca.WithPredictor("oracle", nil)); err == nil {
		t.Fatal("unknown predictor accepted")
	} else if !strings.Contains(err.Error(), "oracle") || !strings.Contains(err.Error(), "linear") {
		t.Fatalf("predictor error unhelpful: %v", err)
	}
	if _, err := adca.New(adca.Scenario{}, adca.WithLender("greedy", nil)); err == nil {
		t.Fatal("unknown lender accepted")
	} else if !strings.Contains(err.Error(), "greedy") || !strings.Contains(err.Error(), "best") {
		t.Fatalf("lender error unhelpful: %v", err)
	}
	if _, err := adca.New(adca.Scenario{
		Predictor: &adca.PolicySpec{Name: "ewma", Params: map[string]float64{"alpha": 7}},
	}); err == nil {
		t.Fatal("out-of-range parameter accepted")
	} else if !strings.Contains(err.Error(), "alpha") {
		t.Fatalf("parameter error unhelpful: %v", err)
	}
}

func TestPolicyRegistriesExported(t *testing.T) {
	preds, lends := adca.Predictors(), adca.LenderStrategies()
	if len(preds) < 4 || len(lends) < 5 {
		t.Fatalf("facade registries too small: %v / %v", preds, lends)
	}
}

// TestRunParallelWorkloadWrapper pins the deprecated signature to the
// new option-based entry point.
func TestRunParallelWorkloadWrapper(t *testing.T) {
	sc := adca.Scenario{Wrap: true, Seed: 9}
	w := adca.Workload{ErlangPerCell: 6, DurationTicks: 15_000, WarmupTicks: 1_500, Seed: 9}
	//lint:ignore SA1019 the deprecated wrapper's behavior is under test
	oldWS, oldSt, err := adca.RunParallelWorkload(sc, w, adca.ParallelConfig{Shards: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	newWS, newSt, err := adca.RunParallel(sc, w, adca.WithShards(7), adca.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if oldWS != newWS {
		t.Errorf("wrapper workload stats diverged: %+v vs %+v", oldWS, newWS)
	}
	if oldSt.Grants != newSt.Grants || oldSt.Denies != newSt.Denies || oldSt.Messages != newSt.Messages {
		t.Errorf("wrapper driver tallies diverged: %+v vs %+v", oldSt, newSt)
	}
}

// TestRunParallelPolicyOptions drives a non-default pair through the
// sharded runner and checks serial equality — the seam must stay
// deterministic under the parallel kernel through the facade too.
func TestRunParallelPolicyOptions(t *testing.T) {
	sc := adca.Scenario{Wrap: true, Seed: 4}
	w := adca.Workload{ErlangPerCell: 8, DurationTicks: 15_000, WarmupTicks: 1_500, Seed: 4}
	opts := []adca.Option{
		adca.WithPredictor("damped-trend", nil),
		adca.WithLender("reused-frequency", nil),
	}
	net, err := adca.New(sc, opts...)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := net.RunWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	serialStats := net.Stats()
	par, st, err := adca.RunParallel(sc, w, append(opts, adca.WithShards(7))...)
	if err != nil {
		t.Fatal(err)
	}
	if par != serial {
		t.Errorf("parallel workload stats diverged:\n par    %+v\n serial %+v", par, serial)
	}
	if st.Grants != serialStats.Grants || st.Denies != serialStats.Denies ||
		st.Messages != serialStats.Messages {
		t.Errorf("parallel driver tallies diverged: %d/%d/%d vs %d/%d/%d",
			st.Grants, st.Denies, st.Messages,
			serialStats.Grants, serialStats.Denies, serialStats.Messages)
	}
}
