package adca_test

import (
	"testing"

	"repro"
)

// The module is named "repro"; the package it exports is adca.

func TestDefaultsAndQuickstart(t *testing.T) {
	net := adca.MustNew(adca.Scenario{Wrap: true, CheckInterference: true, Seed: 1})
	if net.Scheme() != "adaptive" {
		t.Fatalf("default scheme = %q", net.Scheme())
	}
	if net.NumCells() != 49 || net.NumChannels() != 70 {
		t.Fatalf("defaults: %d cells, %d channels", net.NumCells(), net.NumChannels())
	}
	var got adca.Result
	net.Request(3, func(r adca.Result) { got = r })
	if !net.RunUntilIdle() {
		t.Fatal("no quiescence")
	}
	if !got.Granted || got.AcquireTicks != 0 {
		t.Fatalf("quickstart grant: %+v", got)
	}
	prim := net.Primaries(3)
	found := false
	for _, p := range prim {
		if p == got.Channel {
			found = true
		}
	}
	if !found {
		t.Fatalf("granted channel %d not primary of cell 3 (%v)", got.Channel, prim)
	}
	st := net.Stats()
	if st.Grants != 1 || st.Messages != 0 || st.LocalGrants != 1 {
		t.Fatalf("stats: %+v", st)
	}
	net.Release(3, got.Channel)
	net.RunUntilIdle()
	if err := net.CheckInterference(); err != nil {
		t.Fatal(err)
	}
}

func TestAllSchemesConstructible(t *testing.T) {
	for _, scheme := range adca.Schemes() {
		net, err := adca.New(adca.Scenario{Scheme: scheme, Wrap: true, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		done := false
		net.Request(net.CenterCell(), func(r adca.Result) { done = true })
		net.RunUntilIdle()
		if !done {
			t.Fatalf("%s: request did not complete", scheme)
		}
	}
}

func TestBadScenarios(t *testing.T) {
	cases := []adca.Scenario{
		{Scheme: "bogus"},
		{Channels: 3}, // fewer channels than reuse groups
		{GridWidth: 3, ReuseDistance: 2, Wrap: true}, // too small to wrap
		{Adaptive: &adca.AdaptiveParams{ThetaLow: 5, ThetaHigh: 1, Alpha: 1, WindowTicks: 10}},
	}
	for i, sc := range cases {
		if _, err := adca.New(sc); err == nil {
			t.Errorf("case %d should fail: %+v", i, sc)
		}
	}
}

func TestScheduledRequestsAndIntrospection(t *testing.T) {
	net := adca.MustNew(adca.Scenario{Wrap: true, Seed: 3, CheckInterference: true})
	center := net.CenterCell()
	if len(net.InterferenceNeighbors(center)) != 18 {
		t.Fatalf("interior neighborhood size = %d", len(net.InterferenceNeighbors(center)))
	}
	var ch int
	net.RequestAt(100, center, func(r adca.Result) { ch = r.Channel })
	net.RunFor(50)
	if net.Now() != 50 {
		t.Fatalf("Now = %d", net.Now())
	}
	net.RunFor(100)
	if len(net.InUse(center)) != 1 {
		t.Fatalf("in use: %v", net.InUse(center))
	}
	net.ReleaseAt(500, center, ch)
	net.RunUntilIdle()
	if len(net.InUse(center)) != 0 {
		t.Fatal("release did not happen")
	}
	if net.Mode(center) != 0 {
		t.Fatalf("mode = %d, want local", net.Mode(center))
	}
}

func TestRunWorkloadUniformAndHotspot(t *testing.T) {
	net := adca.MustNew(adca.Scenario{Wrap: true, Seed: 4, CheckInterference: true})
	ws, err := net.RunWorkload(adca.Workload{
		ErlangPerCell: 3,
		DurationTicks: 50_000,
		WarmupTicks:   5_000,
		Seed:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ws.Offered == 0 {
		t.Fatal("no calls offered")
	}
	if ws.BlockingProbability > 0.02 {
		t.Fatalf("3 Erlang over ~10 primaries should rarely block: %v", ws.BlockingProbability)
	}

	hot := adca.MustNew(adca.Scenario{Scheme: "fixed", Wrap: true, Seed: 5})
	hs, err := hot.RunWorkload(adca.Workload{
		ErlangPerCell: 0.5,
		HotCell:       hot.CenterCell(),
		HotErlang:     25,
		DurationTicks: 50_000,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hs.BlockingProbability == 0 {
		t.Fatal("a 25-Erlang hotspot over ~10 fixed channels must block")
	}
}

func TestHandoffWorkload(t *testing.T) {
	net := adca.MustNew(adca.Scenario{Wrap: true, Seed: 6})
	ws, err := net.RunWorkload(adca.Workload{
		ErlangPerCell: 2,
		HandoffRate:   0.001,
		DurationTicks: 40_000,
		Seed:          6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ws.HandoffAttempts == 0 {
		t.Fatal("mobility produced no handoffs")
	}
}

func TestHandoffWorkloadRejectsNegativeRate(t *testing.T) {
	net := adca.MustNew(adca.Scenario{Wrap: true, Seed: 6})
	if _, err := net.RunWorkload(adca.Workload{
		ErlangPerCell: 2,
		HandoffRate:   -0.001,
		DurationTicks: 10_000,
		Seed:          6,
	}); err == nil {
		t.Fatal("negative handoff rate must be rejected")
	}
}

func TestRunParallelWorkloadMatchesSerial(t *testing.T) {
	sc := adca.Scenario{Wrap: true, Seed: 9, CheckInterference: true}
	w := adca.Workload{
		ErlangPerCell: 6,
		HandoffRate:   0.001,
		DurationTicks: 30_000,
		WarmupTicks:   3_000,
		Seed:          9,
	}
	net := adca.MustNew(sc)
	serial, err := net.RunWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	serialStats := net.Stats()
	if serial.HandoffAttempts == 0 {
		t.Fatal("workload too tame to exercise handoffs")
	}
	for _, shards := range []int{1, 7, 16} {
		par, st, err := adca.RunParallel(sc, w, adca.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		// WorkloadStats is derived from integer tallies only, so the
		// serial and sharded runs must agree exactly. Driver floats
		// (acquisition-delay aggregates) merge in different orders, so
		// only the integer tallies are pinned there.
		if par != serial {
			t.Errorf("shards=%d workload stats diverged:\n par    %+v\n serial %+v", shards, par, serial)
		}
		if st.Grants != serialStats.Grants || st.Denies != serialStats.Denies ||
			st.Messages != serialStats.Messages {
			t.Errorf("shards=%d driver tallies diverged: par %d/%d/%d serial %d/%d/%d",
				shards, st.Grants, st.Denies, st.Messages,
				serialStats.Grants, serialStats.Denies, serialStats.Messages)
		}
	}
}

func TestWorkloadPhasesAndDiurnal(t *testing.T) {
	net := adca.MustNew(adca.Scenario{Wrap: true, Seed: 10})
	ws, err := net.RunWorkload(adca.Workload{
		ErlangPerCell: 2,
		HandoffRate:   0.0005,
		DurationTicks: 40_000,
		WarmupTicks:   4_000,
		Seed:          10,
		Phases: []adca.WorkloadPhase{
			{HotCell: -1, HotRadius: 1, HotErlang: 15, StartTicks: 10_000, EndTicks: 25_000},
		},
		Diurnal: &adca.DiurnalCycle{Swing: 0.5, PeriodTicks: 20_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ws.Offered == 0 || ws.HandoffAttempts == 0 {
		t.Fatalf("phased mobile workload generated nothing: %+v", ws)
	}
	bad := adca.Workload{
		ErlangPerCell: 2,
		DurationTicks: 10_000,
		Phases:        []adca.WorkloadPhase{{HotCell: 9999, HotErlang: 15, StartTicks: 0, EndTicks: 100}},
	}
	if _, err := net.RunWorkload(bad); err == nil {
		t.Fatal("phase centered outside the grid must be rejected")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() adca.Stats {
		net := adca.MustNew(adca.Scenario{Wrap: true, Seed: 42})
		if _, err := net.RunWorkload(adca.Workload{
			ErlangPerCell: 8, DurationTicks: 30_000, Seed: 42,
		}); err != nil {
			t.Fatal(err)
		}
		return net.Stats()
	}
	if run() != run() {
		t.Fatal("same scenario+seed must reproduce exactly")
	}
}
