package adca_test

import (
	"testing"

	"repro"
)

// The module is named "repro"; the package it exports is adca.

func TestDefaultsAndQuickstart(t *testing.T) {
	net := adca.MustNew(adca.Scenario{Wrap: true, CheckInterference: true, Seed: 1})
	if net.Scheme() != "adaptive" {
		t.Fatalf("default scheme = %q", net.Scheme())
	}
	if net.NumCells() != 49 || net.NumChannels() != 70 {
		t.Fatalf("defaults: %d cells, %d channels", net.NumCells(), net.NumChannels())
	}
	var got adca.Result
	net.Request(3, func(r adca.Result) { got = r })
	if !net.RunUntilIdle() {
		t.Fatal("no quiescence")
	}
	if !got.Granted || got.AcquireTicks != 0 {
		t.Fatalf("quickstart grant: %+v", got)
	}
	prim := net.Primaries(3)
	found := false
	for _, p := range prim {
		if p == got.Channel {
			found = true
		}
	}
	if !found {
		t.Fatalf("granted channel %d not primary of cell 3 (%v)", got.Channel, prim)
	}
	st := net.Stats()
	if st.Grants != 1 || st.Messages != 0 || st.LocalGrants != 1 {
		t.Fatalf("stats: %+v", st)
	}
	net.Release(3, got.Channel)
	net.RunUntilIdle()
	if err := net.CheckInterference(); err != nil {
		t.Fatal(err)
	}
}

func TestAllSchemesConstructible(t *testing.T) {
	for _, scheme := range adca.Schemes() {
		net, err := adca.New(adca.Scenario{Scheme: scheme, Wrap: true, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		done := false
		net.Request(net.CenterCell(), func(r adca.Result) { done = true })
		net.RunUntilIdle()
		if !done {
			t.Fatalf("%s: request did not complete", scheme)
		}
	}
}

func TestBadScenarios(t *testing.T) {
	cases := []adca.Scenario{
		{Scheme: "bogus"},
		{Channels: 3}, // fewer channels than reuse groups
		{GridWidth: 3, ReuseDistance: 2, Wrap: true}, // too small to wrap
		{Adaptive: &adca.AdaptiveParams{ThetaLow: 5, ThetaHigh: 1, Alpha: 1, WindowTicks: 10}},
	}
	for i, sc := range cases {
		if _, err := adca.New(sc); err == nil {
			t.Errorf("case %d should fail: %+v", i, sc)
		}
	}
}

func TestScheduledRequestsAndIntrospection(t *testing.T) {
	net := adca.MustNew(adca.Scenario{Wrap: true, Seed: 3, CheckInterference: true})
	center := net.CenterCell()
	if len(net.InterferenceNeighbors(center)) != 18 {
		t.Fatalf("interior neighborhood size = %d", len(net.InterferenceNeighbors(center)))
	}
	var ch int
	net.RequestAt(100, center, func(r adca.Result) { ch = r.Channel })
	net.RunFor(50)
	if net.Now() != 50 {
		t.Fatalf("Now = %d", net.Now())
	}
	net.RunFor(100)
	if len(net.InUse(center)) != 1 {
		t.Fatalf("in use: %v", net.InUse(center))
	}
	net.ReleaseAt(500, center, ch)
	net.RunUntilIdle()
	if len(net.InUse(center)) != 0 {
		t.Fatal("release did not happen")
	}
	if net.Mode(center) != 0 {
		t.Fatalf("mode = %d, want local", net.Mode(center))
	}
}

func TestRunWorkloadUniformAndHotspot(t *testing.T) {
	net := adca.MustNew(adca.Scenario{Wrap: true, Seed: 4, CheckInterference: true})
	ws, err := net.RunWorkload(adca.Workload{
		ErlangPerCell: 3,
		DurationTicks: 50_000,
		WarmupTicks:   5_000,
		Seed:          4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ws.Offered == 0 {
		t.Fatal("no calls offered")
	}
	if ws.BlockingProbability > 0.02 {
		t.Fatalf("3 Erlang over ~10 primaries should rarely block: %v", ws.BlockingProbability)
	}

	hot := adca.MustNew(adca.Scenario{Scheme: "fixed", Wrap: true, Seed: 5})
	hs, err := hot.RunWorkload(adca.Workload{
		ErlangPerCell: 0.5,
		HotCell:       hot.CenterCell(),
		HotErlang:     25,
		DurationTicks: 50_000,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hs.BlockingProbability == 0 {
		t.Fatal("a 25-Erlang hotspot over ~10 fixed channels must block")
	}
}

func TestHandoffWorkload(t *testing.T) {
	net := adca.MustNew(adca.Scenario{Wrap: true, Seed: 6})
	ws, err := net.RunWorkload(adca.Workload{
		ErlangPerCell: 2,
		HandoffRate:   0.001,
		DurationTicks: 40_000,
		Seed:          6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ws.HandoffAttempts == 0 {
		t.Fatal("mobility produced no handoffs")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() adca.Stats {
		net := adca.MustNew(adca.Scenario{Wrap: true, Seed: 42})
		if _, err := net.RunWorkload(adca.Workload{
			ErlangPerCell: 8, DurationTicks: 30_000, Seed: 42,
		}); err != nil {
			t.Fatal(err)
		}
		return net.Stats()
	}
	if run() != run() {
		t.Fatal("same scenario+seed must reproduce exactly")
	}
}
